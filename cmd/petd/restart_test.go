package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pet"
)

// TestKillRestartResume is the crash-only acceptance test: SIGKILL petd in
// the middle of a checkpointing pretrain job, restart it with the same
// flags, and the job resumes from its latest checkpoint under the original
// ID and runs to completion — with the journal recording the whole story:
// running → interrupted → resumed → done.
//
// It runs petd as a real subprocess (not in-process run()) because nothing
// short of kill -9 proves the journal's crash contract.
func TestKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a petd subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "petd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building petd: %v\n%s", err, out)
	}

	journal := filepath.Join(dir, "jobs.journal")
	ckpt := filepath.Join(dir, "ckpt")
	args := []string{"-addr", "127.0.0.1:0", "-journal", journal, "-q"}

	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting petd: %v", err)
		}
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			t.Fatalf("reading addr line: %v", err)
		}
		addr, ok := strings.CutPrefix(strings.TrimSpace(line), "addr=")
		if !ok {
			t.Fatalf("first stdout line = %q, want addr=...", line)
		}
		return cmd, "http://" + addr
	}

	getStatus := func(base, id string) (st struct {
		State   string `json:"state"`
		Rounds  int    `json:"rounds"`
		Resumed bool   `json:"resumed"`
		Error   string `json:"error"`
	}) {
		t.Helper()
		resp, err := http.Get(base + "/experiments/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		return st
	}

	cmd, base := start()
	// Enough rounds that the job cannot finish inside one poll window: the
	// kill must land mid-run, never after a natural completion.
	spec := fmt.Sprintf(`{"kind":"pretrain","load":0.5,"duration":"3ms","workers":1,"rounds":40,"checkpoint":%q}`, ckpt)
	resp, err := http.Post(base+"/experiments", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /experiments: %v", err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("launch: status %d, job %+v", resp.StatusCode, job)
	}

	// Let at least one round land (one checkpoint on disk), then kill -9
	// mid-run.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getStatus(base, job.ID)
		if st.Rounds >= 1 {
			if st.State == "done" {
				t.Fatalf("job finished before the kill could land; raise the round count: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no completed round before deadline: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	// Restart with the same flags: the journal replays, the job resumes
	// from its checkpoint under the original ID and finishes.
	cmd, base = start()
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	}()
	deadline = time.Now().Add(4 * time.Minute)
	for {
		st := getStatus(base, job.ID)
		if st.State == "done" {
			if !st.Resumed {
				t.Fatalf("finished job not marked resumed: %+v", st)
			}
			break
		}
		if st.State == "failed" || st.State == "cancelled" || st.State == "interrupted" {
			t.Fatalf("resumed job ended %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not done before deadline: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The journal tells the whole story, in order.
	jl, err := pet.OpenJobJournal(journal, t.Logf)
	if err != nil {
		t.Fatalf("replaying journal: %v", err)
	}
	states, err := jl.States(job.ID)
	if err != nil {
		t.Fatalf("reading journal states: %v", err)
	}
	want := []pet.JobState{"running", "interrupted", "resumed", "done"}
	i := 0
	for _, s := range states {
		if i < len(want) && s == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("journal states %v do not contain the sequence %v", states, want)
	}
}
