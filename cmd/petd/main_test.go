package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pet"
)

// trainedBundle pre-trains one tiny bundle for every test in the package.
var trainedBundle = sync.OnceValues(func() ([]byte, error) {
	return pet.PretrainPET(pet.Scenario{Topo: pet.TinyScale(), Load: 0.5, Seed: 1}, 5*pet.Millisecond)
})

// startDaemon runs petd on an ephemeral port and returns its base URL plus
// a shutdown func returning the exit code.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-q"}, extraArgs...)
	go func() {
		exit <- run(ctx, args, pw, &stderr)
		pw.Close()
	}()

	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		cancel()
		t.Fatalf("reading addr line: %v (stderr: %s)", err, stderr.String())
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "addr=")
	if !ok {
		cancel()
		t.Fatalf("first stdout line = %q, want addr=...", line)
	}
	stop := func() int {
		cancel()
		select {
		case code := <-exit:
			return code
		case <-time.After(2 * time.Minute):
			t.Fatalf("petd did not exit (stderr: %s)", stderr.String())
			return -1
		}
	}
	return "http://" + addr, stop
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// TestDaemonSmoke drives the daemon end to end over real HTTP: lifecycle,
// SSE, inference, graceful shutdown. This is the test `make serve-smoke`
// runs in CI.
func TestDaemonSmoke(t *testing.T) {
	bundle, err := trainedBundle()
	if err != nil {
		t.Fatalf("pre-training bundle: %v", err)
	}
	modelPath := filepath.Join(t.TempDir(), "pet.model")
	if err := os.WriteFile(modelPath, bundle, 0o644); err != nil {
		t.Fatal(err)
	}

	base, stop := startDaemon(t, "-models", modelPath, "-replicas", "2", "-sse", "100ms")

	// Health: daemon up, bundle loaded.
	var hz struct {
		Status string `json:"status"`
		Infer  *struct {
			Switches []int `json:"switches"`
			ObsDim   int   `json:"obs_dim"`
		} `json:"infer"`
	}
	getJSON(t, base+"/healthz", &hz)
	if hz.Status != "ok" || hz.Infer == nil || len(hz.Infer.Switches) == 0 {
		t.Fatalf("healthz = %+v", hz)
	}

	// Readiness: a daemon that booted with a model flips ready immediately.
	var rz struct {
		Ready bool `json:"ready"`
	}
	getJSON(t, base+"/readyz", &rz)
	if !rz.Ready {
		t.Fatalf("readyz = %+v, want ready after boot", rz)
	}

	// Lifecycle: launch a short run and watch it to completion.
	resp, err := http.Post(base+"/experiments", "application/json",
		strings.NewReader(`{"scheme":"SECN1","load":0.5,"warmup":"2ms","duration":"3ms"}`))
	if err != nil {
		t.Fatalf("POST /experiments: %v", err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("launch: status %d, job %+v", resp.StatusCode, job)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, base+"/experiments/"+job.ID, &job)
		if job.State == "done" {
			break
		}
		if job.State == "failed" || job.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("job ended %+v", job)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SSE: at least one snapshot event arrives promptly.
	sseCtx, sseCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sseCancel()
	sseReq, _ := http.NewRequestWithContext(sseCtx, http.MethodGet, base+"/events?interval=50ms", nil)
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	sawSnapshot := false
	sc := bufio.NewScanner(sseResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if sc.Text() == "event: snapshot" {
			sawSnapshot = true
			break
		}
	}
	sseResp.Body.Close()
	if !sawSnapshot {
		t.Fatal("no snapshot event on /events")
	}

	// Inference: one observation per switch, answered with in-range RED
	// parameters and the bundle's digest.
	var infReq pet.InferRequest
	for _, sw := range hz.Infer.Switches {
		infReq.Requests = append(infReq.Requests, pet.ObsRequest{Switch: sw, Obs: make([]float64, hz.Infer.ObsDim)})
	}
	body, _ := json.Marshal(infReq)
	resp, err = http.Post(base+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /infer: %v", err)
	}
	var infResp pet.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&infResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /infer = %d", resp.StatusCode)
	}
	if len(infResp.Actions) != len(infReq.Requests) || infResp.ModelSHA256 == "" {
		t.Fatalf("infer response %+v", infResp)
	}
	for _, a := range infResp.Actions {
		if a.KminBytes <= 0 || a.KmaxBytes < a.KminBytes || a.Pmax <= 0 || a.Pmax > 1 {
			t.Fatalf("implausible action %+v", a)
		}
	}

	// Launch a long job, cancel it over HTTP, then shut the daemon down.
	resp, err = http.Post(base+"/experiments", "application/json",
		strings.NewReader(`{"scheme":"SECN1","load":0.5,"duration":"2s"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	del, _ := http.NewRequest(http.MethodDelete, base+"/experiments/"+job.ID, nil)
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	if code := stop(); code != 0 {
		t.Fatalf("petd exited %d", code)
	}
}

// TestDaemonListFlags covers the registry listing exits.
func TestDaemonListFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-list-schemes"}, &out, &errb); code != 0 {
		t.Fatalf("-list-schemes exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "PET") || !strings.Contains(out.String(), "SECN1") {
		t.Fatalf("scheme list missing entries: %q", out.String())
	}
	out.Reset()
	if code := run(context.Background(), []string{"-list-transports"}, &out, &errb); code != 0 {
		t.Fatalf("-list-transports exit %d", code)
	}
	if !strings.Contains(out.String(), "dcqcn") {
		t.Fatalf("transport list missing dcqcn: %q", out.String())
	}
}

// TestDaemonBadFlags: argument errors exit non-zero without binding, and a
// journal with mid-history damage refuses the boot — that is data
// corruption for an operator to inspect, not something to shrug past.
func TestDaemonBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-bogus-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	journal := filepath.Join(t.TempDir(), "jobs.journal")
	damaged := "{\"v\":1,\"id\":\"exp-000001\",\"state\":\"pending\"}\nnot json at all\n{\"v\":1,\"id\":\"exp-000001\",\"state\":\"running\"}\n"
	if err := os.WriteFile(journal, []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(context.Background(), []string{"-journal", journal}, &out, &errb); code != 1 {
		t.Fatalf("corrupt journal exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestDaemonDegradedBoot: a model bundle that fails to load keeps the
// daemon up and not-ready instead of exiting — /healthz stays the liveness
// "alive", /readyz carries the reason until a model lands.
func TestDaemonDegradedBoot(t *testing.T) {
	base, stop := startDaemon(t, "-models", filepath.Join(t.TempDir(), "nope.model"))
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&rz); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Ready || len(rz.Reasons) == 0 {
		t.Fatalf("degraded readyz = %d %+v, want 503 with a reason", resp.StatusCode, rz)
	}
	var hz struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("liveness = %+v, want ok while degraded", hz)
	}
	if code := stop(); code != 0 {
		t.Fatalf("petd exited %d", code)
	}
}

// TestDaemonStoreEmptyNotReady: -store with no serving version boots
// not-ready but fully functional — it accepts /models ingest and a
// promotion flips it ready. The regression this pins down: an empty
// serving channel must never error the boot.
func TestDaemonStoreEmptyNotReady(t *testing.T) {
	bundle, err := trainedBundle()
	if err != nil {
		t.Fatalf("pre-training bundle: %v", err)
	}
	base, stop := startDaemon(t, "-store", filepath.Join(t.TempDir(), "models"), "-replicas", "1")

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&rz); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Ready || len(rz.Reasons) == 0 {
		t.Fatalf("empty-store readyz = %d %+v, want 503 with a reason", resp.StatusCode, rz)
	}

	// The not-ready daemon still takes ingest and promotion.
	resp, err = http.Post(base+"/models", "application/octet-stream", bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	var vi struct {
		Version int `json:"version"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&vi); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || vi.Version == 0 {
		t.Fatalf("ingest while not-ready: status %d, version %+v", resp.StatusCode, vi)
	}
	resp, err = http.Post(fmt.Sprintf("%s/models/%d/promote", base, vi.Version), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote while not-ready = %d: %s", resp.StatusCode, pbody)
	}

	// A model now serves: readiness flips.
	rz.Ready = false
	getJSON(t, base+"/readyz", &rz)
	if !rz.Ready {
		t.Fatalf("readyz after promotion = %+v, want ready", rz)
	}
	if code := stop(); code != 0 {
		t.Fatalf("petd exited %d", code)
	}
}

// TestDaemonCheckpointModels: -models accepts a fleet checkpoint directory,
// reusing the sha256-verified manifest machinery.
func TestDaemonCheckpointModels(t *testing.T) {
	dir := t.TempDir()
	res, err := pet.PretrainFleet(pet.Scenario{Topo: pet.TinyScale(), Load: 0.5, Seed: 1},
		5*pet.Millisecond, pet.FleetConfig{Workers: 1, Rounds: 1, Checkpoint: dir})
	if err != nil {
		t.Fatalf("fleet pretrain: %v", err)
	}
	if len(res.Models) == 0 {
		t.Fatal("fleet produced no models")
	}

	base, stop := startDaemon(t, "-models", dir, "-replicas", "1")
	var hz struct {
		Infer *struct {
			ModelSHA256 string `json:"model_sha256"`
		} `json:"infer"`
	}
	getJSON(t, base+"/healthz", &hz)
	if hz.Infer == nil || hz.Infer.ModelSHA256 == "" {
		t.Fatalf("checkpoint-backed daemon reports no bundle: %+v", hz)
	}
	if code := stop(); code != 0 {
		t.Fatalf("petd exited %d", code)
	}
}

// TestDaemonPretrainJob: the daemon trains, and the bundle it produces is
// downloadable and loadable.
func TestDaemonPretrainJob(t *testing.T) {
	base, stop := startDaemon(t)
	defer stop()

	resp, err := http.Post(base+"/experiments", "application/json",
		strings.NewReader(`{"kind":"pretrain","load":0.5,"duration":"5ms","workers":1,"rounds":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		Error    string `json:"error"`
		Pretrain *struct {
			ModelBytes  int    `json:"model_bytes"`
			ModelSHA256 string `json:"model_sha256"`
		} `json:"pretrain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Minute)
	for job.State != "done" {
		if job.State == "failed" || job.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("pretrain job ended %+v", job)
		}
		time.Sleep(20 * time.Millisecond)
		getJSON(t, base+"/experiments/"+job.ID, &job)
	}
	if job.Pretrain == nil || job.Pretrain.ModelBytes == 0 {
		t.Fatalf("no pretrain summary: %+v", job)
	}

	// Download the bundle and load it into a fresh inference service.
	resp, err = http.Get(fmt.Sprintf("%s/experiments/%s/models", base, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(bundle) != job.Pretrain.ModelBytes {
		t.Fatalf("downloaded %d bytes (err %v), summary says %d", len(bundle), err, job.Pretrain.ModelBytes)
	}
	if _, err := pet.NewInferService(bundle, pet.InferOptions{Replicas: 1}); err != nil {
		t.Fatalf("downloaded bundle rejected: %v", err)
	}
}

// TestDaemonVersionFlag: -version prints the build identity and exits 0.
func TestDaemonVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("-version exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "pet") {
		t.Fatalf("-version output %q does not name the module", out.String())
	}
}

// TestDaemonStoreLifecycle: ingest -> promote -> infer over a daemon
// started with -store, then restart on the same directory and confirm the
// serving channel survives (the restarted daemon answers /infer without
// -models).
func TestDaemonStoreLifecycle(t *testing.T) {
	bundle, err := trainedBundle()
	if err != nil {
		t.Fatalf("pre-training bundle: %v", err)
	}
	storeDir := filepath.Join(t.TempDir(), "models")

	base, stop := startDaemon(t, "-store", storeDir, "-replicas", "1")

	// Fresh store, no serving channel: /infer is 503.
	resp, err := http.Post(base+"/infer", "application/json",
		strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("model-less /infer = %d, want 503", resp.StatusCode)
	}

	// Ingest the bundle as a candidate.
	resp, err = http.Post(base+"/models", "application/octet-stream", bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	var vi struct {
		Version int `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || vi.Version == 0 {
		t.Fatalf("ingest: status %d, version %+v", resp.StatusCode, vi)
	}

	// Promote it. No incumbent, so the gate passes it alone.
	resp, err = http.Post(fmt.Sprintf("%s/models/%d/promote", base, vi.Version), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote = %d: %s", resp.StatusCode, pbody)
	}

	// The promoted model answers /infer, stamped with its store version.
	var hz struct {
		Infer *struct {
			Switches []int `json:"switches"`
			ObsDim   int   `json:"obs_dim"`
		} `json:"infer"`
	}
	getJSON(t, base+"/healthz", &hz)
	if hz.Infer == nil {
		t.Fatal("no infer service after promotion")
	}
	var infReq pet.InferRequest
	infReq.Requests = []pet.ObsRequest{{Switch: hz.Infer.Switches[0], Obs: make([]float64, hz.Infer.ObsDim)}}
	body, _ := json.Marshal(infReq)
	resp, err = http.Post(base+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var infResp pet.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&infResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || infResp.ModelVersion != vi.Version {
		t.Fatalf("post-promotion infer: status %d, model version %d (want %d)",
			resp.StatusCode, infResp.ModelVersion, vi.Version)
	}
	if code := stop(); code != 0 {
		t.Fatalf("petd exited %d", code)
	}

	// Restart on the same store: the daemon boots from the serving channel.
	base, stop = startDaemon(t, "-store", storeDir, "-replicas", "1")
	resp, err = http.Post(base+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	infResp = pet.InferResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&infResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || infResp.ModelVersion != vi.Version {
		t.Fatalf("restarted daemon infer: status %d, model version %d (want %d)",
			resp.StatusCode, infResp.ModelVersion, vi.Version)
	}
	if code := stop(); code != 0 {
		t.Fatalf("petd exited %d on restart", code)
	}
}
