// Command petd is the resident control-plane daemon: it keeps the
// simulator, the training fleet, a trained policy and a versioned model
// store resident behind one HTTP listener, so experiments launch with a
// POST and new policies roll out with a promote instead of a restart.
//
// Usage:
//
//	petd                                      # lifecycle API + telemetry only
//	petd -addr :9090 -max-jobs 2              # two experiments simulate at once
//	petd -models pet.model -topo tiny         # also serve POST /infer
//	petd -models ckpt/                        # bundle from a fleet checkpoint dir
//	petd -store models/                       # versioned store: /models API, boot from "serving"
//	petd -list-schemes                        # registered scheme names
//
// Endpoints:
//
//	POST   /experiments        launch a run or pretrain job (JSON ExperimentSpec)
//	GET    /experiments        list every job
//	GET    /experiments/{id}   inspect one job
//	GET    /experiments/{id}/models   download a finished pretrain bundle
//	DELETE /experiments/{id}   cancel (pretrain jobs checkpoint on the way out)
//	GET    /events             server-sent events: telemetry + job snapshots
//	POST   /infer              batched observations -> (Kmin, Kmax, Pmax) actions
//	POST   /models             ingest a candidate bundle (raw bytes or ?from=jobID)
//	GET    /models             versions, channels, live serving identity
//	GET    /models/{ref}       one version or channel (?download=1 for the bytes)
//	POST   /models/{ref}/promote   shadow-eval gate, then atomic hot-swap
//	GET    /healthz            daemon, model and store status
//	GET    /version            build identity of the running daemon
//	GET    /metrics, /snapshot, /debug/pprof/...   the telemetry endpoints
//
// Watch a run live with `curl -N http://host:port/events`. SIGINT/SIGTERM
// shuts down gracefully: SSE streams get a shutdown event, running jobs are
// cancelled (pretrain jobs write a final checkpoint), and the listener
// drains within -drain.
//
// Stdout carries exactly one machine-parsable `addr=` line once the
// listener is bound (so scripts using -addr :0 can discover the port);
// progress and logs go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("petd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":9090", "listen address (\":0\" binds an ephemeral port, reported on stdout)")
		models   = fs.String("models", "", "serve POST /infer from this model bundle file or fleet checkpoint directory")
		storeDir = fs.String("store", "", "versioned model store directory: enables the /models API and, without -models, boots /infer from the store's \"serving\" channel")
		keep     = fs.Int("keep-versions", 0, "store GC retention after each promotion (0 = 5; channel-pinned versions always survive)")
		topoF    = fs.String("topo", "tiny", "fabric the bundle was trained on: tiny|small|paper")
		schemeF  = fs.String("scheme", "PET", "registered scheme name served by /infer (see -list-schemes)")
		replicas = fs.Int("replicas", 0, "inference replica pool size = max concurrent /infer requests (0 = one per core)")
		maxJobs  = fs.Int("max-jobs", 1, "experiments simulating concurrently (excess queue as pending)")
		sse      = fs.Duration("sse", time.Second, "default /events push interval (per-client ?interval= overrides)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for jobs and connections")
		quiet    = fs.Bool("q", false, "suppress job progress on stderr")
		listS    = fs.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT    = fs.Bool("list-transports", false, "print the registered transport names and exit")
		version  = fs.Bool("version", false, "print the build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, pet.ReadBuildInfo())
		return 0
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	fatalf := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "petd: "+format+"\n", args...)
		return 1
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, "petd: "+format+"\n", args...)
		}
	}

	reg := pet.NewTelemetry()
	inferOpts := pet.InferOptions{
		Topo:      *topoF,
		Scheme:    *schemeF,
		Replicas:  *replicas,
		Telemetry: reg,
	}

	var store *pet.ModelStore
	if *storeDir != "" {
		var err error
		if store, err = pet.OpenModelStore(*storeDir); err != nil {
			return fatalf("opening model store: %v", err)
		}
		logf("model store %s (%d versions)", *storeDir, len(store.Versions()))
	}

	var infer *pet.InferService
	if *models != "" {
		bundle, src, err := loadBundle(*models, logf)
		if err != nil {
			return fatalf("loading models: %v", err)
		}
		if infer, err = pet.NewInferService(bundle, inferOpts); err != nil {
			return fatalf("%v", err)
		}
		info := infer.Info()
		logf("serving %s (%s, sha256 %.12s…, %d switches, %d replicas)",
			*models, src, info.ModelSHA256, len(info.Switches), info.Replicas)
	} else if store != nil {
		// Boot from the store's serving channel when it has one, so a
		// restarted daemon resumes serving the last promoted policy.
		if vi, bundle, err := store.Resolve(pet.ModelChannelServing); err == nil {
			opts := inferOpts
			opts.Version = vi.Version
			if infer, err = pet.NewInferService(bundle, opts); err != nil {
				return fatalf("loading serving version %d from the store: %v", vi.Version, err)
			}
			logf("serving store version %d (sha256 %.12s…, channel %q)",
				vi.Version, vi.SHA256, pet.ModelChannelServing)
		} else {
			logf("store has no serving channel yet; /infer waits for a promotion")
		}
	}

	daemon := pet.NewDaemon(pet.DaemonConfig{
		Telemetry:    reg,
		Infer:        infer,
		Store:        store,
		InferOpts:    inferOpts,
		KeepVersions: *keep,
		SSEInterval:  *sse,
		MaxJobs:      *maxJobs,
		Logf:         logf,
	})
	srv, err := daemon.Start(*addr)
	if err != nil {
		return fatalf("listen: %v", err)
	}
	// The single machine-parsable line: the bound address.
	fmt.Fprintf(stdout, "addr=%s\n", srv.Addr)
	logf("listening on http://%s (/experiments, /events, /infer, /models, /healthz, /metrics)", srv.Addr)

	<-ctx.Done()
	logf("shutting down (budget %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := daemon.Shutdown(dctx, srv); err != nil {
		return fatalf("shutdown: %v", err)
	}
	logf("bye")
	return 0
}

// loadBundle reads the /infer model bundle: a regular file holds raw
// EncodeModels bytes (petsim/pettrain -out format); a directory is a fleet
// checkpoint whose newest intact, sha256-verified round is used — any
// skipped (corrupt or torn) candidates are logged through logf.
func loadBundle(path string, logf func(format string, a ...any)) (bundle []byte, src string, err error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, "", err
	}
	if st.IsDir() {
		models, round, err := pet.LoadFleetCheckpointLogged(path, logf)
		if err != nil {
			return nil, "", err
		}
		return models, fmt.Sprintf("checkpoint round %d", round), nil
	}
	data, err := os.ReadFile(path)
	return data, "bundle file", err
}
