// Command petd is the resident control-plane daemon: it keeps the
// simulator, the training fleet, a trained policy and a versioned model
// store resident behind one HTTP listener, so experiments launch with a
// POST and new policies roll out with a promote instead of a restart.
//
// Usage:
//
//	petd                                      # lifecycle API + telemetry only
//	petd -addr :9090 -max-jobs 2              # two experiments simulate at once
//	petd -models pet.model -topo tiny         # also serve POST /infer
//	petd -models ckpt/                        # bundle from a fleet checkpoint dir
//	petd -store models/                       # versioned store: /models API, boot from "serving"
//	petd -list-schemes                        # registered scheme names
//
// Endpoints:
//
//	POST   /experiments        launch a run or pretrain job (JSON ExperimentSpec)
//	GET    /experiments        list every job
//	GET    /experiments/{id}   inspect one job
//	GET    /experiments/{id}/models   download a finished pretrain bundle
//	DELETE /experiments/{id}   cancel (pretrain jobs checkpoint on the way out)
//	GET    /events             server-sent events: telemetry + job snapshots
//	POST   /infer              batched observations -> (Kmin, Kmax, Pmax) actions
//	POST   /models             ingest a candidate bundle (raw bytes or ?from=jobID)
//	GET    /models             versions, channels, live serving identity
//	GET    /models/{ref}       one version or channel (?download=1 for the bytes)
//	POST   /models/{ref}/promote   shadow-eval gate, then atomic hot-swap
//	GET    /healthz            liveness: daemon, model and store status
//	GET    /readyz             readiness: 503 + reason while degraded or saturated
//	GET    /version            build identity of the running daemon
//	GET    /metrics, /snapshot, /debug/pprof/...   the telemetry endpoints
//
// Watch a run live with `curl -N http://host:port/events`. SIGINT/SIGTERM
// shuts down gracefully: SSE streams get a shutdown event, running jobs are
// cancelled (pretrain jobs write a final checkpoint), and the listener
// drains within -drain.
//
// Stdout carries exactly one machine-parsable `addr=` line once the
// listener is bound (so scripts using -addr :0 can discover the port);
// progress and logs go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("petd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":9090", "listen address (\":0\" binds an ephemeral port, reported on stdout)")
		models   = fs.String("models", "", "serve POST /infer from this model bundle file or fleet checkpoint directory")
		storeDir = fs.String("store", "", "versioned model store directory: enables the /models API and, without -models, boots /infer from the store's \"serving\" channel")
		keep     = fs.Int("keep-versions", 0, "store GC retention after each promotion (0 = 5; channel-pinned versions always survive)")
		topoF    = fs.String("topo", "tiny", "fabric the bundle was trained on: tiny|small|paper")
		schemeF  = fs.String("scheme", "PET", "registered scheme name served by /infer (see -list-schemes)")
		replicas = fs.Int("replicas", 0, "inference replica pool size = max concurrent /infer requests (0 = one per core)")
		maxJobs  = fs.Int("max-jobs", 1, "experiments simulating concurrently (excess queue as pending)")
		journalF = fs.String("journal", "", "durable job journal file: jobs survive a daemon death, interrupted pretrain jobs resume from their checkpoint")
		maxInfl  = fs.Int("max-inflight", 0, "admitted /infer requests in flight before shedding 429s (0 = 4096)")
		inferDl  = fs.Duration("infer-deadline", 0, "default server-side /infer budget when the client sends no ?deadline= (0 = 10s)")
		jobDl    = fs.Duration("job-deadline", 0, "hung-job watchdog: flag a pretrain job silent this long, cancel at twice it (0 = off)")
		sse      = fs.Duration("sse", time.Second, "default /events push interval (per-client ?interval= overrides)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for jobs and connections")
		quiet    = fs.Bool("q", false, "suppress job progress on stderr")
		listS    = fs.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT    = fs.Bool("list-transports", false, "print the registered transport names and exit")
		version  = fs.Bool("version", false, "print the build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, pet.ReadBuildInfo())
		return 0
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	fatalf := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "petd: "+format+"\n", args...)
		return 1
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, "petd: "+format+"\n", args...)
		}
	}

	reg := pet.NewTelemetry()
	inferOpts := pet.InferOptions{
		Topo:      *topoF,
		Scheme:    *schemeF,
		Replicas:  *replicas,
		Telemetry: reg,
	}

	// Boot is crash-only and degradation-tolerant: a store or bundle that
	// cannot load keeps the daemon up and NOT-ready (with the reason on
	// /readyz) instead of exiting — the /models ingest and promote path is
	// exactly how an operator repairs a daemon in that state.
	var pending string
	notReady := func(format string, args ...any) {
		pending = fmt.Sprintf(format, args...)
		logf("boot degraded: %s (daemon up, /readyz not ready)", pending)
	}

	var store *pet.ModelStore
	if *storeDir != "" {
		var err error
		if store, err = pet.OpenModelStore(*storeDir); err != nil {
			notReady("model store %s unusable: %v", *storeDir, err)
		} else {
			logf("model store %s (%d versions)", *storeDir, len(store.Versions()))
		}
	}

	var infer *pet.InferService
	if *models != "" {
		bundle, src, err := loadBundle(*models, logf)
		if err != nil {
			notReady("model bundle %s unusable: %v", *models, err)
		} else if infer, err = pet.NewInferService(bundle, inferOpts); err != nil {
			notReady("model bundle %s rejected: %v", *models, err)
		} else {
			info := infer.Info()
			logf("serving %s (%s, sha256 %.12s…, %d switches, %d replicas)",
				*models, src, info.ModelSHA256, len(info.Switches), info.Replicas)
		}
	} else if store != nil {
		// Boot from the store's serving channel when it has one, so a
		// restarted daemon resumes serving the last promoted policy.
		if vi, bundle, err := store.Resolve(pet.ModelChannelServing); err == nil {
			opts := inferOpts
			opts.Version = vi.Version
			if infer, err = pet.NewInferService(bundle, opts); err != nil {
				notReady("serving version %d from the store rejected: %v", vi.Version, err)
			} else {
				logf("serving store version %d (sha256 %.12s…, channel %q)",
					vi.Version, vi.SHA256, pet.ModelChannelServing)
			}
		} else {
			notReady("store %s has no serving version yet; ingest and promote a model", *storeDir)
		}
	}

	// The journal is the one boot input that must be intact: it is the
	// durability contract, and mid-history corruption means operator action,
	// not a silent shrug. (A torn final line — the crash case — recovers.)
	var journal *pet.JobJournal
	if *journalF != "" {
		var err error
		if journal, err = pet.OpenJobJournal(*journalF, logf); err != nil {
			return fatalf("job journal: %v", err)
		}
		if n := len(journal.Replayed()); n > 0 {
			logf("job journal %s: replayed %d job(s)", *journalF, n)
		}
	}

	daemon := pet.NewDaemon(pet.DaemonConfig{
		Telemetry:     reg,
		Infer:         infer,
		Store:         store,
		InferOpts:     inferOpts,
		KeepVersions:  *keep,
		SSEInterval:   *sse,
		MaxJobs:       *maxJobs,
		Journal:       journal,
		Admission:     pet.AdmissionConfig{MaxInFlight: *maxInfl, Deadline: *inferDl},
		Watchdog:      pet.WatchdogConfig{Deadline: *jobDl},
		PendingReason: pending,
		Logf:          logf,
	})
	srv, err := daemon.Start(*addr)
	if err != nil {
		return fatalf("listen: %v", err)
	}
	// The single machine-parsable line: the bound address.
	fmt.Fprintf(stdout, "addr=%s\n", srv.Addr)
	logf("listening on http://%s (/experiments, /events, /infer, /models, /healthz, /metrics)", srv.Addr)

	<-ctx.Done()
	logf("shutting down (budget %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := daemon.Shutdown(dctx, srv); err != nil {
		return fatalf("shutdown: %v", err)
	}
	logf("bye")
	return 0
}

// loadBundle reads the /infer model bundle: a regular file holds raw
// EncodeModels bytes (petsim/pettrain -out format); a directory is a fleet
// checkpoint whose newest intact, sha256-verified round is used — any
// skipped (corrupt or torn) candidates are logged through logf.
func loadBundle(path string, logf func(format string, a ...any)) (bundle []byte, src string, err error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, "", err
	}
	if st.IsDir() {
		models, round, err := pet.LoadFleetCheckpointLogged(path, logf)
		if err != nil {
			return nil, "", err
		}
		return models, fmt.Sprintf("checkpoint round %d", round), nil
	}
	data, err := os.ReadFile(path)
	return data, "bundle file", err
}
