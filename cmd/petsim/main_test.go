package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestListSchemesGolden pins the -list-schemes output: one sorted name per
// line, nothing else. Anything new that registers against the default
// import graph must update this list deliberately.
func TestListSchemesGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-schemes"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	want := "ACC\nAMT\nPET\nPET-CTDE\nPET-ablated\nQAECN\nSECN1\nSECN2\n"
	if out.String() != want {
		t.Fatalf("-list-schemes = %q, want %q", out.String(), want)
	}
}

func TestListTransportsGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-transports"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	want := "dcqcn\ndctcp\n"
	if out.String() != want {
		t.Fatalf("-list-transports = %q, want %q", out.String(), want)
	}
}

func TestUnknownSchemeExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scheme", "bogus", "-duration", "1ms", "-warmup", "1ms"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown scheme "bogus"`) {
		t.Fatalf("stderr = %q", errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty on failure: %q", out.String())
	}
}

func TestUnknownTransportExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-transport", "pigeon", "-duration", "1ms", "-warmup", "1ms"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown transport "pigeon"`) {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestShortRunPrintsStats drives a tiny real simulation through the CLI
// entry point end to end.
func TestShortRunPrintsStats(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scheme", "SECN1", "-warmup", "2ms", "-duration", "5ms"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"scheme      SECN1", "flows done", "normalized FCT", "wall clock"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
