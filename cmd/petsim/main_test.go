package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListSchemesGolden pins the -list-schemes output: one sorted name per
// line, nothing else. Anything new that registers against the default
// import graph must update this list deliberately.
func TestListSchemesGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-schemes"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	want := "ACC\nAMT\nPET\nPET-CTDE\nPET-ablated\nQAECN\nSECN1\nSECN2\n"
	if out.String() != want {
		t.Fatalf("-list-schemes = %q, want %q", out.String(), want)
	}
}

func TestListTransportsGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-transports"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	want := "dcqcn\ndctcp\n"
	if out.String() != want {
		t.Fatalf("-list-transports = %q, want %q", out.String(), want)
	}
}

func TestUnknownSchemeExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scheme", "bogus", "-duration", "1ms", "-warmup", "1ms"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown scheme "bogus"`) {
		t.Fatalf("stderr = %q", errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty on failure: %q", out.String())
	}
}

func TestUnknownTransportExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-transport", "pigeon", "-duration", "1ms", "-warmup", "1ms"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown transport "pigeon"`) {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestShortRunPrintsStats drives a tiny real simulation through the CLI
// entry point end to end.
func TestShortRunPrintsStats(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scheme", "SECN1", "-warmup", "2ms", "-duration", "5ms"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"scheme      SECN1", "flows done", "normalized FCT", "wall clock"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// --- scenario document loading ---

func TestScenarioFileRuns(t *testing.T) {
	dir := t.TempDir()
	doc := `{
		"name": "cli-probe",
		"seed": 5,
		"scheme": "SECN1",
		"load": 0.5,
		"warmup": "2ms",
		"duration": "5ms"
	}`
	path := filepath.Join(dir, "probe.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scenario cli-probe") {
		t.Fatalf("output does not label the scenario run:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "scheme      SECN1") {
		t.Fatalf("output missing document scheme:\n%s", out.String())
	}
}

// Explicitly-set flags override the document; defaults do not.
func TestScenarioFlagOverrides(t *testing.T) {
	dir := t.TempDir()
	doc := `{"seed": 5, "scheme": "SECN1", "load": 0.5, "warmup": "2ms", "duration": "4ms"}`
	path := filepath.Join(dir, "probe.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", path, "-scheme", "SECN2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scheme      SECN2") {
		t.Fatalf("explicit -scheme did not override the document:\n%s", out.String())
	}
}

func TestScenarioBadSpecExit2(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ doc, want string }{
		{`{"topo": {"spine": 2}}`, "topo.spine: unknown field"},
		{`{"scheme": "NOPE"}`, "scheme: bench: unknown scheme"},
		{`{"events": [{"at": "1ms", "kind": "quake"}]}`, "events[0].kind"},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", path}, &out, &errb)
		if code != 2 {
			t.Fatalf("exit = %d, want 2 for %s", code, tc.doc)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Fatalf("stderr %q does not name %q", errb.String(), tc.want)
		}
	}
}

func TestScenarioMissingFileExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "/does/not/exist.json"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// Every canned library scenario loads and runs through petsim (windows
// shortened via explicit flag overrides to stay test-fast).
func TestCannedScenarioLibraryLoads(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario library found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run([]string{"-scenario", f, "-warmup", "1ms", "-duration", "2ms"}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit = %d, stderr: %s", code, errb.String())
			}
			if !strings.Contains(out.String(), "flows done") {
				t.Fatalf("no stats printed:\n%s", out.String())
			}
		})
	}
}

func TestListWorkloadsAndEvents(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-workloads"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out.String() != "datamining\nwebsearch\n" {
		t.Fatalf("-list-workloads = %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-list-events"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out.String() != "incast-burst\nlink-down\nlink-up\nload-change\nworkload-switch\n" {
		t.Fatalf("-list-events = %q", out.String())
	}
}
