// Command petsim runs one simulation scenario and prints its statistics.
//
// Usage:
//
//	petsim -scheme PET -load 0.6 -workload websearch -train
//	petsim -scheme SECN1 -topo small -duration 100ms
//	petsim -scheme PET -models pet.model      # offline-trained weights
//	petsim -scheme PET -transport dctcp       # window-based end hosts
//	petsim -telemetry :8080                   # live /metrics while running
//	petsim -list-schemes                      # registered scheme names
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"pet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("petsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarioF  = fs.String("scenario", "", "load a scenario document (JSON); explicitly-set flags override its fields")
		schemeF    = fs.String("scheme", "PET", "registered scheme name (see -list-schemes)")
		transportF = fs.String("transport", "dcqcn", "registered end-host transport (see -list-transports)")
		topoF      = fs.String("topo", "tiny", "fabric preset: "+strings.Join(pet.TopoPresets(), "|"))
		spines     = fs.Int("spines", 0, "override the preset's spine count")
		leaves     = fs.Int("leaves", 0, "override the preset's leaf count")
		hosts      = fs.Int("hosts", 0, "override the preset's hosts per leaf")
		shards     = fs.Int("shards", 1, "event-loop shards (0 = one per CPU, 1 = single loop)")
		wlF        = fs.String("workload", "websearch", "registered workload name: "+strings.Join(pet.WorkloadNames(), "|"))
		load       = fs.Float64("load", 0.6, "offered load fraction (0,1]")
		incast     = fs.Float64("incast", 0.2, "fraction of load delivered as incast groups")
		fanIn      = fs.Int("fanin", 3, "senders per incast group")
		train      = fs.Bool("train", true, "online incremental training (learned schemes)")
		models     = fs.String("models", "", "PET model bundle from pettrain")
		warmup     = fs.Duration("warmup", 20*time.Millisecond, "simulated warmup before measurement")
		dur        = fs.Duration("duration", 60*time.Millisecond, "simulated measurement window")
		seed       = fs.Int64("seed", 1, "root random seed")
		traceF     = fs.String("trace", "", "write an event trace CSV to this path")
		listS      = fs.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT      = fs.Bool("list-transports", false, "print the registered transport names and exit")
		listW      = fs.Bool("list-workloads", false, "print the registered workload names and exit")
		listE      = fs.Bool("list-events", false, "print the registered event kinds and exit")
		version    = fs.Bool("version", false, "print the build identity and exit")
	)
	var tf pet.TelemetryFlag
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, pet.ReadBuildInfo())
		return 0
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listW {
		for _, name := range pet.WorkloadNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listE {
		for _, name := range pet.EventKindNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	fatalf := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "petsim: "+format+"\n", args...)
		return 2
	}

	// With -scenario the document is the base configuration and only flags
	// the user explicitly set override it; without, every flag applies.
	visited := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })
	set := func(name string) bool { return *scenarioF == "" || visited[name] }

	var s pet.Scenario
	runLabel := *wlF
	if *scenarioF != "" {
		spec, err := pet.LoadScenarioFile(*scenarioF)
		if err != nil {
			return fatalf("%v", err)
		}
		if s, err = spec.ToScenario(); err != nil {
			return fatalf("%v", err)
		}
		runLabel = spec.Name
		if runLabel == "" {
			runLabel = *scenarioF
		}
	}
	if set("seed") {
		s.Seed = *seed
	}
	if set("load") {
		s.Load = *load
		s.ExplicitLoad = true
	}
	if set("incast") {
		s.IncastFraction = *incast
	}
	if set("fanin") {
		s.IncastFanIn = *fanIn
	}
	if set("scheme") {
		s.Scheme = pet.Scheme(*schemeF)
	}
	if set("transport") {
		s.Transport = pet.TransportKind(*transportF)
	}
	if set("train") {
		s.Train = *train
	}
	if set("warmup") {
		s.Warmup = pet.Time(warmup.Nanoseconds()) * pet.Nanosecond
		s.ExplicitWarmup = true
	}
	if set("duration") {
		s.Duration = pet.Time(dur.Nanoseconds()) * pet.Nanosecond
	}
	if set("topo") {
		topoCfg, err := pet.TopoPreset(*topoF)
		if err != nil {
			return fatalf("%v", err)
		}
		s.Topo = topoCfg
	}
	if *spines > 0 && set("spines") {
		s.Topo.Spines = *spines
	}
	if *leaves > 0 && set("leaves") {
		s.Topo.Leaves = *leaves
	}
	if *hosts > 0 && set("hosts") {
		s.Topo.HostsPerLeaf = *hosts
	}
	if err := s.Topo.Validate(); err != nil {
		return fatalf("%v", err)
	}
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	if set("shards") {
		s.Shards = *shards
	}
	if set("workload") {
		wl, err := pet.WorkloadByName(*wlF)
		if err != nil {
			return fatalf("%v", err)
		}
		s.Workload = wl
		if !s.ExplicitBetas {
			s.Beta1, s.Beta2 = pet.DefaultBetas(wl)
			s.ExplicitBetas = true
		}
	}
	if *models != "" && set("models") {
		data, err := os.ReadFile(*models)
		if err != nil {
			return fatalf("reading models: %v", err)
		}
		s.Models = data
	}

	if err := tf.Start(func(format string, a ...any) {
		fmt.Fprintf(stderr, format+"\n", a...)
	}); err != nil {
		return fatalf("telemetry: %v", err)
	}
	defer tf.Stop()
	s.Telemetry = tf.Registry

	s.Trace = *traceF != ""
	start := time.Now()
	env, err := pet.NewEnv(s)
	if err != nil {
		return fatalf("%v", err)
	}
	res := env.Run()
	wall := time.Since(start)
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			return fatalf("creating trace: %v", err)
		}
		if err := env.Trace.WriteCSV(f); err != nil {
			return fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			return fatalf("closing trace: %v", err)
		}
		fmt.Fprintf(stdout, "trace       %d events -> %s\n", env.Trace.Len(), *traceF)
	}

	label := fmt.Sprintf("%s, load %.0f%%, %s", *wlF, *load*100, *topoF)
	if *scenarioF != "" {
		label = fmt.Sprintf("scenario %s, load %.0f%%", runLabel, res.Load*100)
	}
	fmt.Fprintf(stdout, "scheme      %s  (%s)\n", res.Scheme, label)
	fmt.Fprintf(stdout, "flows done  %d   drops %d\n", res.FlowsDone, res.Drops)
	fmt.Fprintf(stdout, "normalized FCT (slowdown):\n")
	fmt.Fprintf(stdout, "  overall        avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.Overall.AvgSlowdown, res.Overall.P99Slowdown, res.Overall.N)
	fmt.Fprintf(stdout, "  mice <=100KB   avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.MiceBkt.AvgSlowdown, res.MiceBkt.P99Slowdown, res.MiceBkt.N)
	fmt.Fprintf(stdout, "  elephant>=10MB avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.Elephant.AvgSlowdown, res.Elephant.P99Slowdown, res.Elephant.N)
	fmt.Fprintf(stdout, "  incast flows   avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.Incast.AvgSlowdown, res.Incast.P99Slowdown, res.Incast.N)
	fmt.Fprintf(stdout, "latency     avg %.1fus   p99 %.1fus\n", res.LatencyAvgUs, res.LatencyP99Us)
	fmt.Fprintf(stdout, "queue       avg %.1fKB   var %.1fKB\n", res.QueueAvgKB, res.QueueVarKB)
	if rb := res.Overhead[pet.OverheadReplayBytes]; rb > 0 {
		fmt.Fprintf(stdout, "replay      %d bytes exchanged, %d bytes resident\n",
			rb, res.Overhead[pet.OverheadReplayMemory])
	}
	fmt.Fprintf(stdout, "wall clock  %v\n", wall.Round(time.Millisecond))
	return 0
}
