// Command petsim runs one simulation scenario and prints its statistics.
//
// Usage:
//
//	petsim -scheme PET -load 0.6 -workload websearch -train
//	petsim -scheme SECN1 -topo small -duration 100ms
//	petsim -scheme PET -models pet.model      # offline-trained weights
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pet"
)

func main() {
	var (
		schemeF = flag.String("scheme", "PET", "PET | PET-ablated | ACC | SECN1 | SECN2")
		topoF   = flag.String("topo", "tiny", "fabric scale: tiny|small|paper")
		wlF     = flag.String("workload", "websearch", "websearch | datamining")
		load    = flag.Float64("load", 0.6, "offered load fraction (0,1]")
		incast  = flag.Float64("incast", 0.2, "fraction of load delivered as incast groups")
		fanIn   = flag.Int("fanin", 3, "senders per incast group")
		train   = flag.Bool("train", true, "online incremental training (learned schemes)")
		models  = flag.String("models", "", "PET model bundle from pettrain")
		warmup  = flag.Duration("warmup", 20*time.Millisecond, "simulated warmup before measurement")
		dur     = flag.Duration("duration", 60*time.Millisecond, "simulated measurement window")
		seed    = flag.Int64("seed", 1, "root random seed")
		traceF  = flag.String("trace", "", "write an event trace CSV to this path")
	)
	flag.Parse()

	s := pet.Scenario{
		Seed:           *seed,
		Load:           *load,
		IncastFraction: *incast,
		IncastFanIn:    *fanIn,
		Scheme:         pet.Scheme(*schemeF),
		Train:          *train,
		Warmup:         pet.Time(warmup.Nanoseconds()) * pet.Nanosecond,
		Duration:       pet.Time(dur.Nanoseconds()) * pet.Nanosecond,
	}
	switch *topoF {
	case "tiny":
		s.Topo = pet.TinyScale()
	case "small":
		s.Topo = pet.SmallScale()
	case "paper":
		s.Topo = pet.PaperScale()
	default:
		fatalf("unknown topo %q", *topoF)
	}
	switch *wlF {
	case "websearch":
		s.Workload = pet.WebSearch()
		s.Beta1, s.Beta2 = 0.3, 0.7
	case "datamining":
		s.Workload = pet.DataMining()
		s.Beta1, s.Beta2 = 0.7, 0.3
	default:
		fatalf("unknown workload %q", *wlF)
	}
	if *models != "" {
		data, err := os.ReadFile(*models)
		if err != nil {
			fatalf("reading models: %v", err)
		}
		s.Models = data
	}

	s.Trace = *traceF != ""
	start := time.Now()
	env := pet.NewEnv(s)
	res := env.Run()
	wall := time.Since(start)
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fatalf("creating trace: %v", err)
		}
		if err := env.Trace.WriteCSV(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
		fmt.Printf("trace       %d events -> %s\n", env.Trace.Len(), *traceF)
	}

	fmt.Printf("scheme      %s  (%s, load %.0f%%, %s)\n", res.Scheme, *wlF, *load*100, *topoF)
	fmt.Printf("flows done  %d   drops %d\n", res.FlowsDone, res.Drops)
	fmt.Printf("normalized FCT (slowdown):\n")
	fmt.Printf("  overall        avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.Overall.AvgSlowdown, res.Overall.P99Slowdown, res.Overall.N)
	fmt.Printf("  mice <=100KB   avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.MiceBkt.AvgSlowdown, res.MiceBkt.P99Slowdown, res.MiceBkt.N)
	fmt.Printf("  elephant>=10MB avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.Elephant.AvgSlowdown, res.Elephant.P99Slowdown, res.Elephant.N)
	fmt.Printf("  incast flows   avg %8.2f   p99 %8.2f   (n=%d)\n",
		res.Incast.AvgSlowdown, res.Incast.P99Slowdown, res.Incast.N)
	fmt.Printf("latency     avg %.1fus   p99 %.1fus\n", res.LatencyAvgUs, res.LatencyP99Us)
	fmt.Printf("queue       avg %.1fKB   var %.1fKB\n", res.QueueAvgKB, res.QueueVarKB)
	if res.ReplayBytesExchanged > 0 {
		fmt.Printf("replay      %d bytes exchanged, %d bytes resident\n",
			res.ReplayBytesExchanged, res.ReplayMemoryBytes)
	}
	fmt.Printf("wall clock  %v\n", wall.Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "petsim: "+format+"\n", args...)
	os.Exit(2)
}
