// Command petbench regenerates the paper's tables and figures.
//
// Usage:
//
//	petbench -exp all                 # every experiment
//	petbench -exp fig4,table1         # a subset
//	petbench -exp fig4 -topo small    # bigger fabric, slower
//	petbench -quick                   # fast smoke pass
//	petbench -scenario scenarios/failure-storm.json   # one spec-described run
//	petbench -telemetry :8080         # watch progress on /metrics meanwhile
//	petbench -list-schemes            # registered scheme names
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig9 table1 overhead historyk beta
//
// -scenario skips the paper catalog and instead executes one declarative
// scenario document (the same JSON petsim and petd accept), rendering the
// run as a metric/value table. -seed and -shards still override the
// document when set explicitly, and -quick shrinks its measurement windows.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("petbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps      = fs.String("exp", "all", "comma-separated experiments or 'all'")
		scenarioF = fs.String("scenario", "", "run one scenario document (JSON) instead of the experiment catalog")
		topoF     = fs.String("topo", "tiny", "fabric preset: "+strings.Join(pet.TopoPresets(), "|"))
		spines    = fs.Int("spines", 0, "override the preset's spine count")
		leaves    = fs.Int("leaves", 0, "override the preset's leaf count")
		hosts     = fs.Int("hosts", 0, "override the preset's hosts per leaf")
		shards    = fs.Int("shards", 1, "event-loop shards per simulation (0 = one per CPU, 1 = single loop)")
		seed      = fs.Int64("seed", 1, "root random seed")
		seeds     = fs.Int("seeds", 1, "independent seeds averaged per result cell")
		loads     = fs.String("loads", "0.3,0.5,0.7", "comma-separated offered loads")
		quick     = fs.Bool("quick", false, "shrink training and measurement windows")
		csvDir    = fs.String("csv", "", "also write each table as CSV into this directory")
		listS     = fs.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT     = fs.Bool("list-transports", false, "print the registered transport names and exit")
		version   = fs.Bool("version", false, "print the build identity and exit")
	)
	var tf pet.TelemetryFlag
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, pet.ReadBuildInfo())
		return 0
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	fatalf := func(code int, format string, args ...any) int {
		fmt.Fprintf(stderr, "petbench: "+format+"\n", args...)
		return code
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fatalf(1, "%v", err)
		}
	}

	if err := tf.Start(func(format string, a ...any) {
		fmt.Fprintf(stderr, format+"\n", a...)
	}); err != nil {
		return fatalf(1, "telemetry: %v", err)
	}
	defer tf.Stop()

	if *shards == 0 {
		*shards = runtime.NumCPU()
	}

	if *scenarioF != "" {
		visited := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })
		spec, err := pet.LoadScenarioFile(*scenarioF)
		if err != nil {
			return fatalf(2, "%v", err)
		}
		s, err := spec.ToScenario()
		if err != nil {
			return fatalf(2, "%v", err)
		}
		if visited["seed"] {
			s.Seed = *seed
		}
		if visited["shards"] {
			s.Shards = *shards
		}
		if *quick {
			s.Warmup = 5 * pet.Millisecond
			s.ExplicitWarmup = true
			s.Duration = 15 * pet.Millisecond
		}
		s.Telemetry = tf.Registry
		title := spec.Name
		if title == "" {
			title = *scenarioF
		}
		start := time.Now()
		res, err := pet.Run(s)
		if err != nil {
			return fatalf(1, "%v", err)
		}
		tb := pet.ResultTable(title, res)
		tb.Note("scenario %s, simulated %v in %v wall clock", *scenarioF,
			time.Duration((s.Warmup+s.Duration)/pet.Nanosecond)*time.Nanosecond,
			time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(stdout, tb)
		if *csvDir != "" {
			base := strings.TrimSuffix(filepath.Base(*scenarioF), filepath.Ext(*scenarioF))
			path := filepath.Join(*csvDir, base+".csv")
			if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
				return fatalf(1, "%v", err)
			}
		}
		return 0
	}

	r := pet.NewRunner()
	r.Seed = *seed
	r.Seeds = *seeds
	r.Telemetry = tf.Registry
	topoCfg, err := pet.TopoPreset(*topoF)
	if err != nil {
		return fatalf(2, "%v", err)
	}
	if *spines > 0 {
		topoCfg.Spines = *spines
	}
	if *leaves > 0 {
		topoCfg.Leaves = *leaves
	}
	if *hosts > 0 {
		topoCfg.HostsPerLeaf = *hosts
	}
	if err := topoCfg.Validate(); err != nil {
		return fatalf(2, "%v", err)
	}
	r.Topo = topoCfg
	if topoCfg.Leaves*topoCfg.HostsPerLeaf >= 100 {
		fmt.Fprintln(stderr, "note: large fabric; expect long runtimes")
	}
	r.Shards = *shards
	r.Loads = nil
	for _, s := range strings.Split(*loads, ",") {
		var l float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &l); err != nil || l <= 0 || l > 1 {
			return fatalf(2, "bad load %q", s)
		}
		r.Loads = append(r.Loads, l)
	}
	if *quick {
		r.TrainTime = 10 * pet.Millisecond
		r.Warmup = 5 * pet.Millisecond
		r.Duration = 15 * pet.Millisecond
	}

	one := func(f func() (*pet.Table, error)) func() ([]*pet.Table, error) {
		return func() ([]*pet.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*pet.Table{t}, nil
		}
	}
	type experiment struct {
		name string
		run  func() ([]*pet.Table, error)
	}
	catalog := []experiment{
		{"fig3", func() ([]*pet.Table, error) { return []*pet.Table{r.Fig3()}, nil }},
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig6", r.Fig6},
		{"fig7", one(r.Fig7)},
		{"fig8", one(r.Fig8)},
		{"fig9", one(r.Fig9)},
		{"table1", one(r.Table1)},
		{"overhead", one(r.AblationReplayOverhead)},
		{"historyk", one(r.AblationHistoryK)},
		{"beta", one(r.AblationRewardBeta)},
		{"dynamic", one(r.DynamicBaselines)},
		{"ctde", one(r.AblationCTDE)},
		{"compat", one(r.TransportCompat)},
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
		known := map[string]bool{}
		for _, e := range catalog {
			known[e.name] = true
		}
		for e := range want {
			if !known[e] {
				return fatalf(2, "unknown experiment %q", e)
			}
		}
	}

	selected := make([]experiment, 0, len(catalog))
	for _, e := range catalog {
		if *exps == "all" || want[e.name] {
			selected = append(selected, e)
		}
	}

	// Stream progress and an ETA to stderr while the sweep runs; table
	// output stays on stdout so redirects and -csv keep working unchanged.
	// The ETA extrapolates from completed experiments, so it only appears
	// from the second one on and sharpens as the sweep advances.
	sweepStart := time.Now()
	r.Progress = func(msg string) {
		fmt.Fprintf(stderr, "  … %s (t+%v)\n", msg, time.Since(sweepStart).Round(time.Second))
	}
	for k, e := range selected {
		eta := ""
		if k > 0 {
			remaining := time.Since(sweepStart) / time.Duration(k) * time.Duration(len(selected)-k)
			eta = fmt.Sprintf(", ETA %v", remaining.Round(time.Second))
		}
		fmt.Fprintf(stderr, "[%d/%d] %s%s\n", k+1, len(selected), e.name, eta)
		start := time.Now()
		tables, err := e.run()
		if err != nil {
			return fatalf(1, "%s: %v", e.name, err)
		}
		for i, tb := range tables {
			fmt.Fprintln(stdout, tb)
			if *csvDir != "" {
				path := fmt.Sprintf("%s/%s_%d.csv", *csvDir, e.name, i)
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					return fatalf(1, "%v", err)
				}
			}
		}
		fmt.Fprintf(stderr, "[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
