// Command petbench regenerates the paper's tables and figures.
//
// Usage:
//
//	petbench -exp all                 # every experiment
//	petbench -exp fig4,table1         # a subset
//	petbench -exp fig4 -topo small    # bigger fabric, slower
//	petbench -quick                   # fast smoke pass
//	petbench -telemetry :8080         # watch progress on /metrics meanwhile
//	petbench -list-schemes            # registered scheme names
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig9 table1 overhead historyk beta
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pet"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments or 'all'")
		topoF   = flag.String("topo", "tiny", "fabric scale: tiny|small|paper")
		seed    = flag.Int64("seed", 1, "root random seed")
		seeds   = flag.Int("seeds", 1, "independent seeds averaged per result cell")
		loads   = flag.String("loads", "0.3,0.5,0.7", "comma-separated offered loads")
		quick   = flag.Bool("quick", false, "shrink training and measurement windows")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		listS   = flag.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT   = flag.Bool("list-transports", false, "print the registered transport names and exit")
		version = flag.Bool("version", false, "print the build identity and exit")
	)
	var tf pet.TelemetryFlag
	tf.Register(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(pet.ReadBuildInfo())
		return
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Println(name)
		}
		return
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Println(name)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "petbench: %v\n", err)
			os.Exit(1)
		}
	}

	if err := tf.Start(func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "petbench: telemetry: %v\n", err)
		os.Exit(1)
	}
	defer tf.Stop()

	r := pet.NewRunner()
	r.Seed = *seed
	r.Seeds = *seeds
	r.Telemetry = tf.Registry
	switch *topoF {
	case "tiny":
		r.Topo = pet.TinyScale()
	case "small":
		r.Topo = pet.SmallScale()
	case "paper":
		r.Topo = pet.PaperScale()
		fmt.Fprintln(os.Stderr, "note: paper-scale fabric; expect long runtimes")
	default:
		fmt.Fprintf(os.Stderr, "petbench: unknown topo %q\n", *topoF)
		os.Exit(2)
	}
	r.Loads = nil
	for _, s := range strings.Split(*loads, ",") {
		var l float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &l); err != nil || l <= 0 || l > 1 {
			fmt.Fprintf(os.Stderr, "petbench: bad load %q\n", s)
			os.Exit(2)
		}
		r.Loads = append(r.Loads, l)
	}
	if *quick {
		r.TrainTime = 10 * pet.Millisecond
		r.Warmup = 5 * pet.Millisecond
		r.Duration = 15 * pet.Millisecond
	}

	one := func(f func() (*pet.Table, error)) func() ([]*pet.Table, error) {
		return func() ([]*pet.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*pet.Table{t}, nil
		}
	}
	type experiment struct {
		name string
		run  func() ([]*pet.Table, error)
	}
	catalog := []experiment{
		{"fig3", func() ([]*pet.Table, error) { return []*pet.Table{r.Fig3()}, nil }},
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig6", r.Fig6},
		{"fig7", one(r.Fig7)},
		{"fig8", one(r.Fig8)},
		{"fig9", one(r.Fig9)},
		{"table1", one(r.Table1)},
		{"overhead", one(r.AblationReplayOverhead)},
		{"historyk", one(r.AblationHistoryK)},
		{"beta", one(r.AblationRewardBeta)},
		{"dynamic", one(r.DynamicBaselines)},
		{"ctde", one(r.AblationCTDE)},
		{"compat", one(r.TransportCompat)},
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
		known := map[string]bool{}
		for _, e := range catalog {
			known[e.name] = true
		}
		for e := range want {
			if !known[e] {
				fmt.Fprintf(os.Stderr, "petbench: unknown experiment %q\n", e)
				os.Exit(2)
			}
		}
	}

	for _, e := range catalog {
		if *exps != "all" && !want[e.name] {
			continue
		}
		start := time.Now()
		tables, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "petbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for i, tb := range tables {
			fmt.Println(tb)
			if *csvDir != "" {
				path := fmt.Sprintf("%s/%s_%d.csv", *csvDir, e.name, i)
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "petbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
