// Command petbench regenerates the paper's tables and figures.
//
// Usage:
//
//	petbench -exp all                 # every experiment
//	petbench -exp fig4,table1         # a subset
//	petbench -exp fig4 -topo small    # bigger fabric, slower
//	petbench -quick                   # fast smoke pass
//	petbench -telemetry :8080         # watch progress on /metrics meanwhile
//	petbench -list-schemes            # registered scheme names
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig9 table1 overhead historyk beta
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pet"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments or 'all'")
		topoF   = flag.String("topo", "tiny", "fabric preset: "+strings.Join(pet.TopoPresets(), "|"))
		spines  = flag.Int("spines", 0, "override the preset's spine count")
		leaves  = flag.Int("leaves", 0, "override the preset's leaf count")
		hosts   = flag.Int("hosts", 0, "override the preset's hosts per leaf")
		shards  = flag.Int("shards", 1, "event-loop shards per simulation (0 = one per CPU, 1 = single loop)")
		seed    = flag.Int64("seed", 1, "root random seed")
		seeds   = flag.Int("seeds", 1, "independent seeds averaged per result cell")
		loads   = flag.String("loads", "0.3,0.5,0.7", "comma-separated offered loads")
		quick   = flag.Bool("quick", false, "shrink training and measurement windows")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		listS   = flag.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT   = flag.Bool("list-transports", false, "print the registered transport names and exit")
		version = flag.Bool("version", false, "print the build identity and exit")
	)
	var tf pet.TelemetryFlag
	tf.Register(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(pet.ReadBuildInfo())
		return
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Println(name)
		}
		return
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Println(name)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "petbench: %v\n", err)
			os.Exit(1)
		}
	}

	if err := tf.Start(func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "petbench: telemetry: %v\n", err)
		os.Exit(1)
	}
	defer tf.Stop()

	r := pet.NewRunner()
	r.Seed = *seed
	r.Seeds = *seeds
	r.Telemetry = tf.Registry
	topoCfg, err := pet.TopoPreset(*topoF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "petbench: %v\n", err)
		os.Exit(2)
	}
	if *spines > 0 {
		topoCfg.Spines = *spines
	}
	if *leaves > 0 {
		topoCfg.Leaves = *leaves
	}
	if *hosts > 0 {
		topoCfg.HostsPerLeaf = *hosts
	}
	if err := topoCfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "petbench: %v\n", err)
		os.Exit(2)
	}
	r.Topo = topoCfg
	if topoCfg.Leaves*topoCfg.HostsPerLeaf >= 100 {
		fmt.Fprintln(os.Stderr, "note: large fabric; expect long runtimes")
	}
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	r.Shards = *shards
	r.Loads = nil
	for _, s := range strings.Split(*loads, ",") {
		var l float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &l); err != nil || l <= 0 || l > 1 {
			fmt.Fprintf(os.Stderr, "petbench: bad load %q\n", s)
			os.Exit(2)
		}
		r.Loads = append(r.Loads, l)
	}
	if *quick {
		r.TrainTime = 10 * pet.Millisecond
		r.Warmup = 5 * pet.Millisecond
		r.Duration = 15 * pet.Millisecond
	}

	one := func(f func() (*pet.Table, error)) func() ([]*pet.Table, error) {
		return func() ([]*pet.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*pet.Table{t}, nil
		}
	}
	type experiment struct {
		name string
		run  func() ([]*pet.Table, error)
	}
	catalog := []experiment{
		{"fig3", func() ([]*pet.Table, error) { return []*pet.Table{r.Fig3()}, nil }},
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig6", r.Fig6},
		{"fig7", one(r.Fig7)},
		{"fig8", one(r.Fig8)},
		{"fig9", one(r.Fig9)},
		{"table1", one(r.Table1)},
		{"overhead", one(r.AblationReplayOverhead)},
		{"historyk", one(r.AblationHistoryK)},
		{"beta", one(r.AblationRewardBeta)},
		{"dynamic", one(r.DynamicBaselines)},
		{"ctde", one(r.AblationCTDE)},
		{"compat", one(r.TransportCompat)},
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
		known := map[string]bool{}
		for _, e := range catalog {
			known[e.name] = true
		}
		for e := range want {
			if !known[e] {
				fmt.Fprintf(os.Stderr, "petbench: unknown experiment %q\n", e)
				os.Exit(2)
			}
		}
	}

	selected := make([]experiment, 0, len(catalog))
	for _, e := range catalog {
		if *exps == "all" || want[e.name] {
			selected = append(selected, e)
		}
	}

	// Stream progress and an ETA to stderr while the sweep runs; table
	// output stays on stdout so redirects and -csv keep working unchanged.
	// The ETA extrapolates from completed experiments, so it only appears
	// from the second one on and sharpens as the sweep advances.
	sweepStart := time.Now()
	r.Progress = func(msg string) {
		fmt.Fprintf(os.Stderr, "  … %s (t+%v)\n", msg, time.Since(sweepStart).Round(time.Second))
	}
	for k, e := range selected {
		eta := ""
		if k > 0 {
			remaining := time.Since(sweepStart) / time.Duration(k) * time.Duration(len(selected)-k)
			eta = fmt.Sprintf(", ETA %v", remaining.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s%s\n", k+1, len(selected), e.name, eta)
		start := time.Now()
		tables, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "petbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for i, tb := range tables {
			fmt.Println(tb)
			if *csvDir != "" {
				path := fmt.Sprintf("%s/%s_%d.csv", *csvDir, e.name, i)
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "petbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
