package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioBadSpecExit2(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ doc, want string }{
		{`{"bogus": true}`, "bogus: unknown field"},
		{`{"transport": "pigeon"}`, "transport: bench: unknown transport"},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", path}, &out, &errb)
		if code != 2 {
			t.Fatalf("exit = %d, want 2 for %s", code, tc.doc)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Fatalf("stderr %q does not name %q", errb.String(), tc.want)
		}
	}
}

// A scenario document runs as a single experiment and renders the
// metric/value table, also as CSV when -csv is given.
func TestScenarioRunRendersTable(t *testing.T) {
	dir := t.TempDir()
	doc := `{
		"name": "bench-probe",
		"seed": 4,
		"scheme": "SECN1",
		"load": 0.5,
		"warmup": "2ms",
		"duration": "4ms"
	}`
	path := filepath.Join(dir, "probe.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	csvDir := filepath.Join(dir, "csv")
	var out, errb bytes.Buffer
	code := run([]string{"-scenario", path, "-csv", csvDir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"== bench-probe ==", "metric", "scheme", "SECN1", "flows done"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(filepath.Join(csvDir, "probe.csv"))
	if err != nil {
		t.Fatalf("no CSV written: %v", err)
	}
	if !strings.Contains(string(data), "metric,value") {
		t.Fatalf("CSV header missing:\n%s", data)
	}
}

// Every canned library scenario loads and runs through petbench under the
// shrunken -quick windows.
func TestCannedScenarioLibraryLoads(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario library found: %v", err)
	}
	if testing.Short() {
		t.Skip("library runs simulations")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run([]string{"-scenario", f, "-quick"}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit = %d, stderr: %s", code, errb.String())
			}
			if !strings.Contains(out.String(), "metric") {
				t.Fatalf("no table rendered:\n%s", out.String())
			}
		})
	}
}
